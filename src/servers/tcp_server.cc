#include "src/servers/tcp_server.h"

#include <algorithm>
#include <cstring>

#include "src/net/pbuf.h"

namespace newtos::servers {

TcpServer::TcpServer(NodeEnv* env, sim::SimCore* core, net::TcpOptions opts,
                     std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for,
                     int shard, int shard_count)
    : Server(env, tcp_shard_name(shard), core),
      opts_(opts),
      src_for_(std::move(src_for)),
      shard_(shard),
      shard_count_(shard_count),
      siblings_(transport_shard_siblings('T', shard, shard_count)) {}

TcpServer::~TcpServer() {
  drop_engine(engine_);
  release_in_flight(pool_, tx_descs_);
}

bool TcpServer::is_sibling(const std::string& peer) const {
  return std::find(siblings_.begin(), siblings_.end(), peer) !=
         siblings_.end();
}

void TcpServer::build_engine() {
  net::TcpEngine::Env e;
  e.clock = clock();
  e.timers = timers();
  e.pools = env().pools;
  e.buf_pool = pool_;
  e.src_for = src_for_;
  e.shard = shard_;
  e.shard_count = shard_count_;
  if (shard_count_ > 1) {
    e.sock_base = net::sock_shard_base(shard_);
    e.sock_span = net::kSockShardSpan;
  }
  e.output = [this](net::TxSeg&& seg, std::uint64_t cookie) {
    sim::Context& ctx = cur();
    // Segmentation work is charged here, per emitted segment — with TSO one
    // superframe covers ~42 MSS of payload, which is the whole point.
    charge(ctx, sim().costs().tcp_segment_proc + 150);
    chan::RichPtr desc =
        net::pack_chain(*pool_, seg.l4_header, seg.payload, seg.offload);
    if (!desc.valid()) {
      engine_->seg_done(cookie, false);
      return;
    }
    chan::Message m;
    m.opcode = kIpTx;
    m.req_id = cookie;
    m.ptr = desc;
    m.arg0 = pack_addrs(seg.src, seg.dst);
    m.arg1 = seg.protocol;
    if (!send_to(kIpName, m, ctx)) {
      pool_->release(desc);
      engine_->seg_done(cookie, false);  // IP down: RTO recovers
      return;
    }
    tx_descs_.emplace(cookie, desc);
  };
  e.rx_done = [this](const chan::RichPtr& frame) {
    chan::Message m;
    m.opcode = kL4RxDone;
    m.ptr = frame;
    send_to(kIpName, m, cur());
  };
  e.notify = [this](net::SockId s, net::TcpEvent ev) {
    if (env().sock_event)
      env().sock_event(shard_, 'T', s, static_cast<std::uint8_t>(ev));
  };
  engine_ = std::make_unique<net::TcpEngine>(std::move(e), opts_);
}

void TcpServer::start(bool restart) {
  pool_ = env().get_pool(name() + ".buf", 32u << 20);
  for (const char* p : {kIpName, kStoreName, kPfName, kSyscallName}) {
    expose_in_queue(p, 1024);
    connect_out(p);
  }
  for (const auto& sib : siblings_) {
    expose_in_queue(sib, 256);
    connect_out(sib);
  }
  build_engine();
  if (restart) {
    post_control([this](sim::Context& ctx) {
      chan::Message m;
      m.opcode = kStoreGet;
      m.arg0 = kKeyTcpListeners;
      m.req_id = request_db().add(kStoreName, 0, {});
      if (!send_to(kStoreName, m, ctx)) announce(true);
    });
  } else {
    post_control([this](sim::Context&) { announce(false); });
  }
}

void TcpServer::on_killed() {
  // The dying process cannot send done-reports; queued receive frames go
  // straight back to their owning pool.  In-flight descriptor chunks leak,
  // bounded per crash.
  drop_engine(engine_);
  tx_descs_.clear();
}

void TcpServer::save_listeners(sim::Context& ctx) {
  const auto bytes =
      net::TcpEngine::serialize_listeners(engine_->listeners());
  chan::RichPtr chunk =
      pool_->alloc(static_cast<std::uint32_t>(bytes.size()));
  if (!chunk.valid()) return;
  auto view = pool_->write_view(chunk);
  std::copy(bytes.begin(), bytes.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = kKeyTcpListeners;
  m.req_id = request_db().add(kStoreName, 0, {});
  m.ptr = chunk;
  if (!send_to(kStoreName, m, ctx)) pool_->release(chunk);
}

void TcpServer::replicate_listener(const net::TcpEngine::ListenRec& rec,
                                   sim::Context& ctx,
                                   const std::string* only) {
  chan::Message m;
  m.opcode = kShardRepListen;
  m.socket = rec.id;
  m.arg0 = rec.addr.value;
  m.arg1 = (static_cast<std::uint64_t>(rec.port) << 16) |
           static_cast<std::uint16_t>(rec.backlog);
  if (only != nullptr) {
    send_to(*only, m, ctx);
    return;
  }
  send_to_all(siblings_, m, ctx);
}

void TcpServer::replicate_close(net::SockId s, sim::Context& ctx) {
  chan::Message m;
  m.opcode = kShardRepClose;
  m.socket = s;
  send_to_all(siblings_, m, ctx);
}

void TcpServer::handle_sock_request(
    const chan::Message& m, sim::Context& ctx,
    const std::function<void(const chan::Message&)>& reply) {
  charge(ctx, sim().costs().socket_op);
  chan::Message r;
  r.opcode = kSockReply;
  r.req_id = m.req_id;
  r.socket = m.socket;
  switch (m.opcode) {
    case kSockOpen:
      r.arg0 = engine_->open();
      r.socket = static_cast<std::uint32_t>(r.arg0);
      break;
    case kSockBind:
      r.arg0 = engine_->bind(m.socket,
                             net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                             static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      break;
    case kSockListen:
      r.arg0 = engine_->listen(m.socket, static_cast<int>(m.arg0)) ? 1 : 0;
      if (r.arg0 != 0 && !siblings_.empty()) {
        // SO_REUSEPORT steering: every replica gets an accept queue for
        // this port, so the 4-tuple hash may land a SYN on any of them.
        for (const auto& rec : engine_->listeners()) {
          if (rec.id == m.socket) replicate_listener(rec, ctx);
        }
      }
      save_listeners(ctx);
      break;
    case kSockConnect:
      // Completion is signalled by the Connected/Reset socket event.
      r.arg0 = engine_->connect(
                   m.socket, net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                   static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      break;
    case kSockSend:
      r.arg0 = engine_->send(m.socket, m.ptr) ? 1 : 0;
      break;
    case kSockClose: {
      const bool was_listener = engine_->is_listener(m.socket);
      r.arg0 = engine_->close(m.socket) ? 1 : 0;
      if (was_listener && !siblings_.empty()) replicate_close(m.socket, ctx);
      save_listeners(ctx);
      break;
    }
    default:
      r.arg0 = 0;
      break;
  }
  reply(r);
}

void TcpServer::on_message(const std::string& from, const chan::Message& m,
                           sim::Context& ctx) {
  switch (m.opcode) {
    case kL4Rx: {
      // Data segments cost more than pure ACKs; approximate by length.
      const std::uint16_t l4_len = static_cast<std::uint16_t>(m.arg0);
      charge(ctx, l4_len > net::kTcpHeaderLen
                      ? sim().costs().tcp_segment_proc
                      : sim().costs().tcp_ack_proc);
      net::L4Packet pkt;
      pkt.frame = m.ptr;
      pkt.l4_offset = static_cast<std::uint16_t>(m.arg0 >> 16);
      pkt.l4_length = l4_len;
      pkt.src = unpack_hi(m.arg1);
      pkt.dst = unpack_lo(m.arg1);
      engine_->input(std::move(pkt));
      return;
    }
    case kL4RxAgg: {
      // A GRO super-segment: the connection machinery is charged ONCE for
      // the whole aggregate — the receive-side mirror of TSO's per-
      // superframe charge on line 47.
      charge(ctx, sim().costs().tcp_segment_proc);
      const auto recs = parse_records<WireRxFrame>(env().pools->read(m.ptr));
      std::vector<net::L4Packet> segs;
      segs.reserve(recs.size());
      for (const auto& rec : recs) {
        // The frame reference left IP's custody when the message was sent;
        // it is back in ours now — return the loan before processing, so a
        // crash from here on is covered by the engine teardown path, not
        // the ledger.
        chan::Pool* p = env().pools->find(rec.frame.pool);
        if (p != nullptr) {
          p->note_return(rec.frame, transport_borrower('T', shard_));
        }
        net::L4Packet pkt;
        pkt.frame = rec.frame;
        pkt.l4_offset = rec.l4_offset;
        pkt.l4_length = rec.l4_length;
        pkt.src = unpack_hi(m.arg1);
        pkt.dst = unpack_lo(m.arg1);
        segs.push_back(pkt);
      }
      env().pools->release(m.ptr);  // descriptor chunk back to IP's pool
      engine_->input_agg(std::move(segs));
      return;
    }
    case kIpTxDone: {
      charge(ctx, sim().costs().request_db_op);
      auto it = tx_descs_.find(m.req_id);
      if (it != tx_descs_.end()) {
        pool_->release(it->second);
        tx_descs_.erase(it);
      }
      engine_->seg_done(m.req_id, m.arg0 != 0);
      return;
    }
    case kConnList: {
      const auto keys = engine_->connection_keys();
      const std::uint32_t bytes = static_cast<std::uint32_t>(
          4 + keys.size() * sizeof(net::PfStateKey));
      chan::RichPtr chunk = pool_->alloc(bytes);
      chan::Message r;
      r.opcode = kConnListReply;
      r.req_id = m.req_id;
      if (chunk.valid()) {
        auto view = pool_->write_view(chunk);
        std::uint32_t n = static_cast<std::uint32_t>(keys.size());
        std::memcpy(view.data(), &n, 4);
        if (n > 0) {
          std::memcpy(view.data() + 4, keys.data(),
                      keys.size() * sizeof(net::PfStateKey));
        }
        r.ptr = chunk;
      }
      send_to(from, r, ctx);
      return;
    }
    case kDrvLink:
      if (m.arg0 != 0 && engine_) engine_->on_path_restored();
      return;
    case kShardRepListen: {
      // Replica records live only in the engine: restarts rebuild them
      // from the siblings' re-seed, never from storage, so there is no
      // store write here.
      net::TcpEngine::ListenRec rec;
      rec.id = m.socket;
      rec.addr = net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)};
      rec.port = static_cast<std::uint16_t>(m.arg1 >> 16);
      rec.backlog = static_cast<int>(m.arg1 & 0xffff);
      engine_->restore_listener(rec);
      return;
    }
    case kShardRepClose:
      engine_->close(m.socket);
      return;
    case kStoreRelease:
      pool_->release(m.ptr);
      return;
    case kStoreAck:
      request_db().complete(m.req_id);
      return;
    case kStoreReply: {
      if (!request_db().complete(m.req_id)) return;
      if (m.arg0 != 0) {
        auto recs = net::TcpEngine::parse_listeners(env().pools->read(m.ptr));
        if (recs) {
          // "TCP can only restore listening sockets since they do not have
          // any frequently changing state" (Section V-D).  Only HOME
          // listeners restore from storage: replica records are re-seeded
          // by the siblings on announce, which also reconciles listeners
          // that were closed while this replica was down (a stored replica
          // record could otherwise resurrect a dead port).
          for (const auto& rec : *recs) {
            if (shard_count_ == 1 || net::sock_shard(rec.id) == shard_)
              engine_->restore_listener(rec);
          }
        }
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(kStoreName, rel, ctx);
      }
      announce(true);
      return;
    }
    case kSockBatch: {
      // One channel message carries a whole submission-queue flush.
      const auto ops = parse_sock_batch(env().pools->read(m.ptr));
      run_sock_batch(ops, [&, this](char, const chan::Message& sm,
                                    const auto& note_open) {
        handle_sock_request(sm, ctx, [&, this](const chan::Message& r) {
          note_open(r);
          send_to(from, r, ctx);
        });
      });
      return;
    }
    default:
      if (m.opcode >= kSockOpen && m.opcode <= kSockClose) {
        handle_sock_request(m, ctx, [this, from, &ctx](const chan::Message& r) {
          send_to(from, r, ctx);
        });
      }
      return;
  }
}

void TcpServer::on_peer_up(const std::string& peer, bool restarted,
                           sim::Context& ctx) {
  if (peer == kIpName && restarted) {
    // IP lost everything in flight: free our descriptors (replies to the old
    // requests will never arrive / are ignored) and retransmit quickly to
    // recover the original bitrate (Section V-D "IP", Figure 4).
    release_in_flight(pool_, tx_descs_);
    if (engine_) engine_->on_ip_restart();
    return;
  }
  if (peer == kStoreName && restarted) {
    save_listeners(ctx);
    return;
  }
  if (is_sibling(peer) && engine_) {
    // A sibling replica came up (first boot or post-crash): push it our
    // home listeners so its accept queue for every steered port exists.
    // Upserts are idempotent, and its own storage may already have them.
    for (const auto& rec : engine_->listeners()) {
      if (net::sock_shard(rec.id) == shard_) replicate_listener(rec, ctx, &peer);
    }
  }
}

}  // namespace newtos::servers
