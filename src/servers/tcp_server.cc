#include "src/servers/tcp_server.h"

#include <algorithm>
#include <cstring>

#include "src/net/pbuf.h"

namespace newtos::servers {

TcpServer::TcpServer(NodeEnv* env, sim::SimCore* core, net::TcpOptions opts,
                     std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for,
                     int shard, int shard_count)
    : Server(env, tcp_shard_name(shard), core),
      opts_(opts),
      src_for_(std::move(src_for)),
      shard_(shard),
      shard_count_(shard_count),
      siblings_(transport_shard_siblings('T', shard, shard_count)) {}

TcpServer::~TcpServer() {
  drop_engine(engine_);
  release_in_flight(pool_, tx_descs_);
}

bool TcpServer::is_sibling(const std::string& peer) const {
  return std::find(siblings_.begin(), siblings_.end(), peer) !=
         siblings_.end();
}

void TcpServer::build_writer() {
  if (!opts_.checkpoint) return;
  CheckpointWriter::Env we;
  we.pool = pool_;
  we.pools = env().pools;
  we.watermark = opts_.ckpt_watermark;
  we.send_store = [this](const chan::Message& m, sim::Context& ctx) {
    return send_to(kStoreName, m, ctx);
  };
  we.new_store_req = [this] { return request_db().add(kStoreName, 0, {}); };
  we.defer = [this](std::function<void(sim::Context&)> fn) {
    post_control(std::move(fn), 100);
  };
  we.charge = [this](sim::Cycles c) {
    if (in_handler()) charge(cur(), c);
  };
  we.drop_checkpoint = [this](net::SockId s) {
    if (engine_) engine_->drop_checkpoint(s);
  };
  writer_ = std::make_unique<CheckpointWriter>(std::move(we));
}

void TcpServer::build_engine() {
  net::TcpEngine::Env e;
  e.clock = clock();
  e.timers = timers();
  e.pools = env().pools;
  e.buf_pool = pool_;
  e.src_for = src_for_;
  e.ckpt = writer_.get();
  e.shard = shard_;
  e.shard_count = shard_count_;
  if (shard_count_ > 1) {
    e.sock_base = net::sock_shard_base(shard_);
    e.sock_span = net::kSockShardSpan;
  }
  e.output = [this](net::TxSeg&& seg, std::uint64_t cookie) {
    sim::Context& ctx = cur();
    // Segmentation work is charged here, per emitted segment — with TSO one
    // superframe covers ~42 MSS of payload, which is the whole point.
    charge(ctx, sim().costs().tcp_segment_proc + 150);
    chan::RichPtr desc =
        net::pack_chain(*pool_, seg.l4_header, seg.payload, seg.offload);
    if (!desc.valid()) {
      engine_->seg_done(cookie, false);
      return;
    }
    chan::Message m;
    m.opcode = kIpTx;
    m.req_id = cookie;
    m.ptr = desc;
    m.arg0 = pack_addrs(seg.src, seg.dst);
    m.arg1 = seg.protocol;
    if (!send_to(kIpName, m, ctx)) {
      pool_->release(desc);
      engine_->seg_done(cookie, false);  // IP down: RTO recovers
      return;
    }
    tx_descs_.emplace(cookie, desc);
  };
  e.rx_done = [this](const chan::RichPtr& frame) {
    chan::Message m;
    m.opcode = kL4RxDone;
    m.ptr = frame;
    send_to(kIpName, m, cur());
  };
  e.notify = [this](net::SockId s, net::TcpEvent ev) {
    if (env().sock_event)
      env().sock_event(shard_, 'T', s, static_cast<std::uint8_t>(ev));
  };
  engine_ = std::make_unique<net::TcpEngine>(std::move(e), opts_);
}

void TcpServer::enable_rx_fastpath(net::IpFastPath::Config cfg,
                                   std::vector<std::string> driver_names) {
  rx_fastpath_ = true;
  fastpath_cfg_ = std::move(cfg);
  fastpath_drivers_ = std::move(driver_names);
}

void TcpServer::build_fastpath() {
  net::IpFastPath::Env fe;
  fe.pools = env().pools;
  fe.deliver = [this](std::uint8_t, net::L4Packet&& pkt) {
    // Same per-segment charging as the kL4Rx leg: data segments cost more
    // than pure ACKs.
    if (in_handler()) {
      charge(cur(), pkt.l4_length > net::kTcpHeaderLen
                        ? sim().costs().tcp_segment_proc
                        : sim().costs().tcp_ack_proc);
    }
    engine_->input(std::move(pkt));
  };
  fe.deliver_agg = [this](net::L4AggPacket&& agg) {
    // The kL4RxAgg mirror: the connection machinery is charged once for the
    // whole GRO aggregate.
    if (in_handler()) charge(cur(), sim().costs().tcp_segment_proc);
    engine_->input_agg(std::move(agg.segs));
  };
  fe.pf_check = [this](const net::PfQuery& q, std::uint64_t cookie) {
    send_to(kPfName, make_pf_check(cookie, q), cur());
    // PF down: the query stays pending; resubmit_pf on its return repeats
    // it and the held frames drain then.
  };
  fe.fallback = [this](int ifindex, const chan::RichPtr& frame) {
    chan::Message m;
    m.opcode = kFastFallback;
    m.ptr = frame;
    m.arg1 = static_cast<std::uint64_t>(ifindex);
    if (!send_to(kIpName, m, cur())) {
      // IP is down: nobody is left to judge the frame — receive pool.
      chan::Pool* p = env().pools->find(frame.pool);
      if (p != nullptr) p->release(frame);
    }
  };
  fe.release = [this](const chan::RichPtr& frame) {
    chan::Pool* p = env().pools->find(frame.pool);
    if (p != nullptr) p->release(frame);
  };
  fastpath_ = std::make_unique<net::IpFastPath>(std::move(fe), fastpath_cfg_);
}

void TcpServer::start(bool restart) {
  // Checkpointing keeps every established connection's TCB page plus its
  // parked queue chunks pool-resident; sized for ~2k concurrent checkpointed
  // connections (the directory pages past 1024 entries, see checkpoint.h).
  pool_ = env().get_pool(name() + ".buf",
                         opts_.checkpoint ? 160u << 20 : 32u << 20);
  for (const char* p : {kIpName, kStoreName, kPfName, kSyscallName}) {
    expose_in_queue(p, 1024);
    connect_out(p);
  }
  for (const auto& sib : siblings_) {
    expose_in_queue(sib, 256);
    connect_out(sib);
  }
  if (env().knobs.work_probes || env().knobs.supervision) {
    expose_in_queue(kRsName, 64);
    connect_out(kRsName);
  }
  if (rx_fastpath_) {
    // One RX queue per driver homes on this shard: the drivers post those
    // frames here directly (kDrvRxFast), so each needs an in-queue.
    for (const auto& d : fastpath_drivers_) expose_in_queue(d, 512);
  }
  build_writer();
  build_engine();
  if (rx_fastpath_) build_fastpath();
  if (restart) {
    post_control([this](sim::Context& ctx) {
      if (!store_get(kKeyTcpListeners, ctx)) announce(true);
    });
  } else {
    post_control([this](sim::Context&) { announce(false); });
  }
}

void TcpServer::on_killed() {
  // The dying process cannot send done-reports; queued receive frames go
  // straight back to their owning pool.  In-flight descriptor chunks leak,
  // bounded per crash.  Checkpointed connections first PARK their queue
  // references: they stay live in the pools, recorded in the loan ledger
  // and the checkpoint pages, ready for the next incarnation to re-adopt.
  if (engine_ && opts_.checkpoint) engine_->park_checkpointed();
  writer_.reset();  // bookkeeping dies with the process; the pages survive
  fastpath_.reset();  // held frames (pending PF verdicts) back to the pool
  drop_engine(engine_);
  tx_descs_.clear();
  store_gets_.clear();
  ckpt_pending_ = 0;
  ckpt_socks_seen_.clear();
  ckpt_fetch_queue_.clear();
  ckpt_inflight_ = 0;
}

bool TcpServer::store_get(std::uint32_t key, sim::Context& ctx) {
  chan::Message m;
  m.opcode = kStoreGet;
  m.arg0 = key;
  m.req_id = request_db().add(kStoreName, 0, {});
  if (!send_to(kStoreName, m, ctx)) {
    request_db().complete(m.req_id);
    return false;
  }
  store_gets_[m.req_id] = key;
  return true;
}

void TcpServer::pump_ckpt_fetches(sim::Context& ctx) {
  while (!ckpt_fetch_queue_.empty() && ckpt_inflight_ < kCkptFetchWindow) {
    // A full store queue just ends this round: every record reply pumps
    // again, and with the window under half the queue capacity at least
    // one fetch is always in flight to trigger that reply.
    if (!store_get(ckpt_fetch_queue_.front(), ctx)) break;
    ckpt_fetch_queue_.pop_front();
    ++ckpt_inflight_;
  }
}

void TcpServer::finish_restore(sim::Context& ctx) {
  (void)ctx;
  ckpt_socks_seen_.clear();
  ckpt_fetch_queue_.clear();
  ckpt_inflight_ = 0;
  if (engine_) engine_->resync_restored();
  announce(true);
}

void TcpServer::save_listeners(sim::Context& ctx) {
  const auto bytes =
      net::TcpEngine::serialize_listeners(engine_->listeners());
  chan::RichPtr chunk =
      pool_->alloc(static_cast<std::uint32_t>(bytes.size()));
  if (!chunk.valid()) return;
  auto view = pool_->write_view(chunk);
  std::copy(bytes.begin(), bytes.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = kKeyTcpListeners;
  m.req_id = request_db().add(kStoreName, 0, {});
  m.ptr = chunk;
  if (!send_to(kStoreName, m, ctx)) pool_->release(chunk);
}

void TcpServer::replicate_listener(const net::TcpEngine::ListenRec& rec,
                                   sim::Context& ctx,
                                   const std::string* only) {
  chan::Message m;
  m.opcode = kShardRepListen;
  m.socket = rec.id;
  m.arg0 = rec.addr.value;
  m.arg1 = (static_cast<std::uint64_t>(rec.port) << 16) |
           static_cast<std::uint16_t>(rec.backlog);
  if (only != nullptr) {
    send_to(*only, m, ctx);
    return;
  }
  send_to_all(siblings_, m, ctx);
}

void TcpServer::replicate_close(net::SockId s, sim::Context& ctx) {
  chan::Message m;
  m.opcode = kShardRepClose;
  m.socket = s;
  send_to_all(siblings_, m, ctx);
}

void TcpServer::handle_sock_request(
    const chan::Message& m, sim::Context& ctx,
    const std::function<void(const chan::Message&)>& reply) {
  charge(ctx, sim().costs().socket_op);
  chan::Message r;
  r.opcode = kSockReply;
  r.req_id = m.req_id;
  r.socket = m.socket;
  switch (m.opcode) {
    case kSockOpen:
      r.arg0 = engine_->open();
      r.socket = static_cast<std::uint32_t>(r.arg0);
      break;
    case kSockBind:
      r.arg0 = engine_->bind(m.socket,
                             net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                             static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      break;
    case kSockListen:
      r.arg0 = engine_->listen(m.socket, static_cast<int>(m.arg0)) ? 1 : 0;
      if (r.arg0 != 0 && !siblings_.empty()) {
        // SO_REUSEPORT steering: every replica gets an accept queue for
        // this port, so the 4-tuple hash may land a SYN on any of them.
        for (const auto& rec : engine_->listeners()) {
          if (rec.id == m.socket) replicate_listener(rec, ctx);
        }
      }
      save_listeners(ctx);
      break;
    case kSockConnect:
      // Completion is signalled by the Connected/Reset socket event.
      r.arg0 = engine_->connect(
                   m.socket, net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                   static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      break;
    case kSockSend:
      r.arg0 = engine_->send(m.socket, m.ptr) ? 1 : 0;
      break;
    case kSockClose: {
      const bool was_listener = engine_->is_listener(m.socket);
      r.arg0 = engine_->close(m.socket) ? 1 : 0;
      if (was_listener && !siblings_.empty()) replicate_close(m.socket, ctx);
      save_listeners(ctx);
      break;
    }
    default:
      r.arg0 = 0;
      break;
  }
  reply(r);
}

void TcpServer::on_message(const std::string& from, const chan::Message& m,
                           sim::Context& ctx) {
  switch (m.opcode) {
    case kL4Rx: {
      // Data segments cost more than pure ACKs; approximate by length.
      const std::uint16_t l4_len = static_cast<std::uint16_t>(m.arg0);
      charge(ctx, l4_len > net::kTcpHeaderLen
                      ? sim().costs().tcp_segment_proc
                      : sim().costs().tcp_ack_proc);
      net::L4Packet pkt;
      pkt.frame = m.ptr;
      pkt.l4_offset = static_cast<std::uint16_t>(m.arg0 >> 16);
      pkt.l4_length = l4_len;
      pkt.src = unpack_hi(m.arg1);
      pkt.dst = unpack_lo(m.arg1);
      engine_->input(std::move(pkt));
      return;
    }
    case kL4RxAgg: {
      // A GRO super-segment: the connection machinery is charged ONCE for
      // the whole aggregate — the receive-side mirror of TSO's per-
      // superframe charge on line 47.
      charge(ctx, sim().costs().tcp_segment_proc);
      const auto recs = parse_records<WireRxFrame>(env().pools->read(m.ptr));
      std::vector<net::L4Packet> segs;
      segs.reserve(recs.size());
      for (const auto& rec : recs) {
        // The frame reference left IP's custody when the message was sent;
        // it is back in ours now — return the loan before processing, so a
        // crash from here on is covered by the engine teardown path, not
        // the ledger.
        chan::Pool* p = env().pools->find(rec.frame.pool);
        if (p != nullptr) {
          p->note_return(rec.frame, transport_borrower('T', shard_));
        }
        net::L4Packet pkt;
        pkt.frame = rec.frame;
        pkt.l4_offset = rec.l4_offset;
        pkt.l4_length = rec.l4_length;
        pkt.src = unpack_hi(m.arg1);
        pkt.dst = unpack_lo(m.arg1);
        segs.push_back(pkt);
      }
      env().pools->release(m.ptr);  // descriptor chunk back to IP's pool
      engine_->input_agg(std::move(segs));
      return;
    }
    case kDrvRxFast: {
      // RSS fast path: a queue's worth of frames straight from the driver.
      // The IP work those frames skipped — validation, GRO, the PF
      // consultation — is paid here, on this shard's core, which is the
      // whole point: it spreads across replicas instead of serializing on
      // the central IP core.
      const auto recs = parse_records<WireRxFrame>(env().pools->read(m.ptr));
      charge(ctx, sim().costs().ip_packet_proc *
                      static_cast<sim::Cycles>(recs.size()));
      std::vector<chan::RichPtr> frames;
      frames.reserve(recs.size());
      for (const auto& rec : recs) {
        // Return the driver's loan before processing (the kL4RxAgg
        // discipline): from here on the teardown path covers the frames.
        chan::Pool* p = env().pools->find(rec.frame.pool);
        if (p != nullptr) {
          p->note_return(rec.frame, transport_borrower('T', shard_));
        }
        frames.push_back(rec.frame);
      }
      env().pools->release(m.ptr);  // driver's descriptor chunk
      if (fastpath_) {
        fastpath_->input_burst(static_cast<int>(m.arg1), frames);
      } else {
        for (const auto& f : frames) {
          chan::Pool* p = env().pools->find(f.pool);
          if (p != nullptr) p->release(f);
        }
      }
      return;
    }
    case kPfVerdict:
      charge(ctx, 120);
      if (fastpath_) fastpath_->pf_verdict(m.req_id, m.arg0 != 0);
      return;
    case kPfCacheInval:
      // The rule set changed (or PF restarted): every cached verdict is
      // stale.  Pending queries were answered under submission order, so
      // held frames still drain correctly.
      if (fastpath_) fastpath_->invalidate_cache();
      return;
    case kIpTxDone: {
      charge(ctx, sim().costs().request_db_op);
      auto it = tx_descs_.find(m.req_id);
      if (it != tx_descs_.end()) {
        pool_->release(it->second);
        tx_descs_.erase(it);
      }
      engine_->seg_done(m.req_id, m.arg0 != 0);
      return;
    }
    case kConnList: {
      const auto keys = engine_->connection_keys();
      const std::uint32_t bytes = static_cast<std::uint32_t>(
          4 + keys.size() * sizeof(net::PfStateKey));
      chan::RichPtr chunk = pool_->alloc(bytes);
      chan::Message r;
      r.opcode = kConnListReply;
      r.req_id = m.req_id;
      if (chunk.valid()) {
        auto view = pool_->write_view(chunk);
        std::uint32_t n = static_cast<std::uint32_t>(keys.size());
        std::memcpy(view.data(), &n, 4);
        if (n > 0) {
          std::memcpy(view.data() + 4, keys.data(),
                      keys.size() * sizeof(net::PfStateKey));
        }
        r.ptr = chunk;
      }
      send_to(from, r, ctx);
      return;
    }
    case kDrvLink:
      if (m.arg0 != 0 && engine_) engine_->on_path_restored();
      return;
    case kShardRepListen: {
      // Replica records live only in the engine: restarts rebuild them
      // from the siblings' re-seed, never from storage, so there is no
      // store write here.
      net::TcpEngine::ListenRec rec;
      rec.id = m.socket;
      rec.addr = net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)};
      rec.port = static_cast<std::uint16_t>(m.arg1 >> 16);
      rec.backlog = static_cast<int>(m.arg1 & 0xffff);
      engine_->restore_listener(rec);
      return;
    }
    case kShardRepClose:
      engine_->close(m.socket);
      return;
    case kStoreRelease:
      pool_->release(m.ptr);
      return;
    case kStoreAck:
      request_db().complete(m.req_id);
      return;
    case kStoreReply: {
      if (!request_db().complete(m.req_id)) return;
      auto git = store_gets_.find(m.req_id);
      const std::uint32_t key =
          git == store_gets_.end() ? kKeyTcpListeners : git->second;
      if (git != store_gets_.end()) store_gets_.erase(git);
      handle_store_reply(key, m, ctx);
      if (m.arg0 != 0) {
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(kStoreName, rel, ctx);
      }
      return;
    }
    case kWorkProbe: {
      // The reincarnation server's end-to-end probe.  Handling it *is*
      // work: a silently wedged incarnation drops it (Server::drop_work)
      // and the missing ack is the detection signal.  Ack IMMEDIATELY —
      // the probe decides whether *this* replica processes work; a wedged
      // IP or PF downstream must never get a healthy transport restarted
      // in its place (their own heartbeats cover them).  The echo still
      // bounces through IP and PF so the full path is exercised and the
      // deeper ack reports the hops (the prober ignores duplicates).
      // The canary quantum makes the ack's latency scale with any
      // slowdown of this replica (see CostModel::probe_canary); the ack
      // must go out AFTER the charge is paid, hence reply_after_charges.
      charge(ctx, sim().costs().probe_canary);
      reply_after_charges([this, cookie = m.req_id](sim::Context& c) {
        chan::Message ack;
        ack.opcode = kWorkProbeAck;
        ack.req_id = cookie;
        ack.arg0 = 1;
        send_to(kRsName, ack, c);
        chan::Message p;
        p.opcode = kWorkProbe;
        p.req_id = cookie;
        send_to(kIpName, p, c);
      });
      return;
    }
    case kWorkProbeAck: {
      chan::Message ack;
      ack.opcode = kWorkProbeAck;
      ack.req_id = m.req_id;
      ack.arg0 = m.arg0 + 1;
      send_to(kRsName, ack, ctx);
      return;
    }
    case kSockBatch: {
      // One channel message carries a whole submission-queue flush.
      const auto ops = parse_sock_batch(env().pools->read(m.ptr));
      run_sock_batch(ops, [&, this](char, const chan::Message& sm,
                                    const auto& note_open) {
        handle_sock_request(sm, ctx, [&, this](const chan::Message& r) {
          note_open(r);
          send_to(from, r, ctx);
        });
      });
      return;
    }
    default:
      if (m.opcode >= kSockOpen && m.opcode <= kSockClose) {
        handle_sock_request(m, ctx, [this, from, &ctx](const chan::Message& r) {
          send_to(from, r, ctx);
        });
      }
      return;
  }
}

void TcpServer::handle_store_reply(std::uint32_t key, const chan::Message& m,
                                   sim::Context& ctx) {
  const bool found = m.arg0 != 0;
  if (key == kKeyTcpListeners) {
    if (found) {
      auto recs = net::TcpEngine::parse_listeners(env().pools->read(m.ptr));
      if (recs) {
        // "TCP can only restore listening sockets since they do not have
        // any frequently changing state" (Section V-D).  Only HOME
        // listeners restore from storage: replica records are re-seeded
        // by the siblings on announce, which also reconciles listeners
        // that were closed while this replica was down (a stored replica
        // record could otherwise resurrect a dead port).
        for (const auto& rec : *recs) {
          if (shard_count_ == 1 || net::sock_shard(rec.id) == shard_)
            engine_->restore_listener(rec);
        }
      }
    }
    // Listeners first (restored connections may reference their parent),
    // then the connection checkpoints.
    if (writer_ == nullptr || !store_get(kKeyTcpCkptDir, ctx)) {
      announce(true);
    }
    return;
  }
  if (key == kKeyTcpCkptDir ||
      (key >= kKeyTcpCkptDirBase && key < kKeyTcpCkptRecBase)) {
    // One page of the chained directory.  Continuation fetches ride
    // ckpt_pending_ like record fetches do; the head fetch was issued by
    // the listener branch and is not counted.
    if (key != kKeyTcpCkptDir) --ckpt_pending_;
    if (found) {
      const auto page = CheckpointWriter::parse_dir(env().pools->read(m.ptr));
      if (page) {
        for (const std::uint32_t sock : page->socks) {
          // A partially-flushed chain can list a sock on two pages (fresh
          // head pointing at a stale tail): fetch each record only once.
          // Fetches are windowed (pump_ckpt_fetches): a full directory
          // page would otherwise burst 1024 gets at a 256-slot queue.
          if (!ckpt_socks_seen_.insert(sock).second) continue;
          ckpt_fetch_queue_.push_back(ckpt_record_key(sock));
          ++ckpt_pending_;
        }
        if (page->next_key != 0 && store_get(page->next_key, ctx))
          ++ckpt_pending_;
      }
    }
    pump_ckpt_fetches(ctx);
    if (ckpt_pending_ == 0) finish_restore(ctx);
    return;
  }
  if (key >= kKeyTcpCkptRecBase) {
    --ckpt_pending_;
    if (ckpt_inflight_ > 0) --ckpt_inflight_;
    pump_ckpt_fetches(ctx);
    // The sock's shard bits were masked into the key; rebuild our own id
    // range (records are namespaced per replica, so they are always ours).
    std::uint32_t sock = key - kKeyTcpCkptRecBase;
    if (shard_count_ > 1) sock |= net::sock_shard_base(shard_);
    bool restored = false;
    if (found && writer_) {
      auto rec = CheckpointWriter::parse_record(env().pools->read(m.ptr));
      if (rec && rec->sock == sock) {
        auto conn = writer_->load_page(*rec);
        if (conn && engine_->restore_conn(*conn)) {
          writer_->adopt(*rec);
          restored = true;
        }
      }
    }
    if (!restored && writer_) {
      // The record or its page did not survive (storage lost it, page
      // stale, tuple collision): the connection is gone — sweep whatever
      // its borrower still parked so nothing strands.
      writer_->reclaim_orphan(sock);
    }
    if (ckpt_pending_ == 0) finish_restore(ctx);
    return;
  }
}

void TcpServer::on_peer_up(const std::string& peer, bool restarted,
                           sim::Context& ctx) {
  if (peer == kIpName && restarted) {
    // IP lost everything in flight: free our descriptors (replies to the old
    // requests will never arrive / are ignored) and retransmit quickly to
    // recover the original bitrate (Section V-D "IP", Figure 4).
    release_in_flight(pool_, tx_descs_);
    if (engine_) engine_->on_ip_restart();
    return;
  }
  if (peer == kStoreName && restarted) {
    // Storage came back empty: re-store the listener set AND the whole
    // checkpoint namespace, so a later TCP crash still finds its pages.
    save_listeners(ctx);
    if (writer_) writer_->store_all(ctx);
    return;
  }
  if (peer == kPfName && fastpath_) {
    // PF (re)appeared: any unanswered fast-path queries died with the old
    // incarnation — repeat them so the held frames drain.
    fastpath_->resubmit_pf();
    return;
  }
  if (is_sibling(peer) && engine_) {
    // A sibling replica came up (first boot or post-crash): push it our
    // home listeners so its accept queue for every steered port exists.
    // Upserts are idempotent, and its own storage may already have them.
    for (const auto& rec : engine_->listeners()) {
      if (net::sock_shard(rec.id) == shard_) replicate_listener(rec, ctx, &peer);
    }
  }
}

}  // namespace newtos::servers
