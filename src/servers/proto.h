// Channel protocol spoken between the stack's servers.
//
// Every message is one 64-byte slot (src/chan/message.h); bulk data is
// referenced through rich pointers into shared pools.  The flows mirror
// Figure 3 of the paper:
//
//   app/SYSCALL -> TCP/UDP : socket control (open/bind/send/...)
//   TCP/UDP -> IP          : kIpTx (packed chain) / kIpTxDone back
//   IP <-> PF              : kPfCheck / kPfVerdict
//   IP <-> DRV             : kDrvTx(+Done), kDrvRx, kDrvRxBuf, kDrvLink
//   IP -> TCP/UDP          : kL4Rx / kL4RxDone back (receive-pool frees)
//   * <-> STORE            : kStorePut/Get/Reply/Release (state recovery)
//   PF -> TCP/UDP          : kConnList / kConnListReply (state rebuild)
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/chan/message.h"
#include "src/chan/pool.h"
#include "src/net/addr.h"
#include "src/net/pf.h"
#include "src/net/steering.h"

namespace newtos::servers {

enum Opcode : std::uint16_t {
  kNop = 0,

  // --- transport -> IP ---------------------------------------------------------
  kIpTx = 10,     // ptr=packed chain; req_id=l4 cookie; arg0=src<<32|dst;
                  // arg1=protocol
  kIpTxDone,      // req_id=l4 cookie; arg0=sent(0/1)

  // --- IP -> transport ---------------------------------------------------------
  kL4Rx = 20,     // ptr=frame; arg0=l4_offset<<16|l4_length; arg1=src<<32|dst
  kL4RxDone,      // ptr=frame (release into IP's receive pool)
  kL4RxAgg,       // ptr=packed WireRxFrame array (one GRO super-segment:
                  // consecutive in-order same-4-tuple TCP segments);
                  // arg0=frame count; arg1=src<<32|dst.  The transport
                  // charges its per-segment cost once for the aggregate and
                  // answers with one kL4RxDone per member frame as it
                  // consumes them.

  // --- IP <-> PF -----------------------------------------------------------------
  kPfCheck = 30,  // req_id=cookie; arg0=src<<32|dst; arg1=sport<<32|dport;
                  // arg2=dir<<16|proto<<8|tcp_flags
  kPfVerdict,     // req_id=cookie; arg0=allow(0/1)
  kPfCheckBatch,  // ptr=packed WirePfQuery array; arg0=count.  All verdicts
                  // of one RX burst travel as one message pair.
  kPfVerdictBatch,  // ptr=packed WirePfVerdict array; arg0=count
  kPfCacheInval,    // PF -> transports broadcast: shard-local verdict caches
                    // are stale (rule change or PF restart); no payload.

  // --- IP <-> drivers -------------------------------------------------------------
  kDrvTx = 40,    // ptr=packed chain; req_id=cookie
  kDrvTxDone,     // req_id=cookie; arg0=ok(0/1)
  kDrvRx,         // ptr=received frame (length = frame length)
  kDrvRxBuf,      // ptr=fresh receive buffer for the device
  kDrvLink,       // arg0=up(0/1)
  kDrvRxBurst,    // ptr=packed WireRxFrame array (one coalesced interrupt);
                  // arg0=frame count.  IP dequeues once per burst; the
                  // per-frame protocol costs still apply, the per-frame IPC
                  // costs do not.
  kDrvRxFast,     // driver -> transport shard (RSS fast path): ptr=packed
                  // WireRxFrame array; arg0=frame count; arg1=ifindex.  The
                  // frames skip the central IP server; the shard runs the
                  // hoisted per-shard IP RX context on them.
  kDrvRxCredit,   // driver -> IP: arg0=buffers consumed by fast-path frames
                  // (IP reposts; the frames themselves never passed through
                  // IP, so kDrvRx/kDrvRxBurst bookkeeping does not fire).
  kFastFallback,  // transport -> IP: ptr=frame; arg1=ifindex.  A frame the
                  // per-shard fast path cannot handle (not for our address,
                  // malformed, ICMP, ...) rejoins the classic IP input path.

  // --- socket control (apps / SYSCALL -> transports) --------------------------------
  kSockOpen = 60,   // arg0=reply tag
  kSockBind,        // socket; arg0=addr; arg1=port
  kSockListen,      // socket; arg0=backlog
  kSockConnect,     // socket; arg0=addr; arg1=port
  kSockSend,        // socket; ptr=payload chunk (transport-owned pool)
  kSockSendTo,      // socket; ptr=payload; arg0=addr; arg1=port  (UDP)
  kSockClose,       // socket
  kSockReply,       // req_id matches request; arg0=status/value
  kSockEvent,       // socket; arg0=TcpEvent
  kSockBatch,       // ptr=packed WireSockOp array; arg0=op count.  One
                    // submission-queue flush travels as one message: the
                    // single trap the application paid covers every op.
                    // The submitter holds one chunk reference per op and
                    // drops it as that op's reply (or abort) comes back.

  // --- PF state rebuild ---------------------------------------------------------------
  kConnList = 80,     // req_id
  kConnListReply,     // req_id; ptr=array of PfStateKey records

  // --- transport replica maintenance (shard <-> sibling shard) -----------------------
  // Port-owning state is replicated SO_REUSEPORT-style to every replica so
  // the 4-tuple steering in IP can hand a frame to any of them: TCP
  // listeners (each replica owns an accept queue for the port) and whole
  // UDP socket records.  Upserts are idempotent; a restarted replica is
  // re-seeded by its siblings when it announces (only home records live
  // in storage).
  kShardRepListen = 100,  // socket=id; arg0=addr; arg1=port<<16|backlog
  kShardRepSock,          // socket=id; arg0=local<<32|peer; arg1=lport<<16|pport
  kShardRepClose,         // socket=id (listener / UDP socket removal)

  // --- storage ---------------------------------------------------------------------------
  kStorePut = 90,  // arg0=key id; ptr=value bytes (requester pool)
  kStoreAck,       // req_id
  kStoreGet,       // arg0=key id
  kStoreReply,     // req_id; arg0=found(0/1); ptr=value (storage pool)
  kStoreRelease,   // ptr=chunk in storage pool to free

  // --- end-to-end work probes (reincarnation server <-> the stack) ------------------
  // Heartbeats only prove a process answers kernel notifies; a silently
  // wedged server (drops its real work, answers heartbeats) passes them.
  // The work probe is a synthetic echo through the stack: rs -> tcpN ->
  // ip -> pf, acked back along the same path.  A server that drops work
  // drops the probe, the reincarnation server times out and restarts it.
  kWorkProbe = 110,  // req_id=probe cookie
  kWorkProbeAck,     // req_id=probe cookie; arg0=hops completed
};

// Storage key ids, namespaced per requesting server by the storage server.
enum StoreKey : std::uint32_t {
  kKeyIpConfig = 1,
  kKeyUdpSockets = 2,
  kKeyTcpListeners = 3,
  kKeyPfRules = 4,
  // Connection-checkpoint journal (per TCP replica namespace): a directory
  // of checkpointed connections plus one compact TCB record per connection
  // at kKeyTcpCkptRecBase + (sock & 0x00ffffff).
  kKeyTcpCkptDir = 16,
  // Continuation pages of a directory that outgrew one record: page i >= 1
  // lives at kKeyTcpCkptDirBase + i - 1, each page naming its successor
  // (chained, so a restart can walk an arbitrarily large directory without
  // knowing its size up front).  The range is far below kKeyTcpCkptRecBase
  // and far above the static keys, so it collides with neither.
  kKeyTcpCkptDirBase = 0x00100000,
  kKeyTcpCkptRecBase = 0x01000000,
};

inline constexpr std::uint32_t ckpt_record_key(std::uint32_t sock) {
  return kKeyTcpCkptRecBase + (sock & 0x00ffffffu);
}

// --- small encode/decode helpers ---------------------------------------------------

inline std::uint64_t pack_addrs(net::Ipv4Addr a, net::Ipv4Addr b) {
  return (static_cast<std::uint64_t>(a.value) << 32) | b.value;
}
inline net::Ipv4Addr unpack_hi(std::uint64_t v) {
  return net::Ipv4Addr{static_cast<std::uint32_t>(v >> 32)};
}
inline net::Ipv4Addr unpack_lo(std::uint64_t v) {
  return net::Ipv4Addr{static_cast<std::uint32_t>(v)};
}

inline chan::Message make_pf_check(std::uint64_t cookie,
                                   const net::PfQuery& q) {
  chan::Message m;
  m.opcode = kPfCheck;
  m.req_id = cookie;
  m.arg0 = pack_addrs(q.src, q.dst);
  m.arg1 = (static_cast<std::uint64_t>(q.sport) << 32) | q.dport;
  m.arg2 = (static_cast<std::uint64_t>(static_cast<std::uint8_t>(q.dir))
            << 16) |
           (static_cast<std::uint64_t>(q.protocol) << 8) | q.tcp_flags;
  return m;
}

inline net::PfQuery parse_pf_check(const chan::Message& m) {
  net::PfQuery q;
  q.src = unpack_hi(m.arg0);
  q.dst = unpack_lo(m.arg0);
  q.sport = static_cast<std::uint16_t>(m.arg1 >> 32);
  q.dport = static_cast<std::uint16_t>(m.arg1);
  q.dir = static_cast<net::PfDir>((m.arg2 >> 16) & 0xff);
  q.protocol = static_cast<std::uint8_t>((m.arg2 >> 8) & 0xff);
  q.tcp_flags = static_cast<std::uint8_t>(m.arg2 & 0xff);
  return q;
}

// --- receive-side batching (kDrvRxBurst / kL4RxAgg / kPfCheckBatch) ----------------
//
// The RX symmetric half of TSO: the NIC coalesces receive interrupts into
// bursts, the burst crosses each channel as ONE message referencing a packed
// array of per-frame records, and IP merges in-order same-flow TCP segments
// of a burst into one aggregate for the transport.  Record arrays are packed
// into a chunk of the sender's staging pool; the consumer releases the
// descriptor chunk through the pool registry once it has unpacked it (the
// modelled done-report of a ring slot).

struct WireRxFrame {
  chan::RichPtr frame;          // whole frame chunk; length = frame bytes
  std::uint16_t l4_offset = 0;  // filled on the IP -> transport leg
  std::uint16_t l4_length = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<WireRxFrame>);

struct WirePfQuery {
  std::uint64_t cookie = 0;
  net::PfQuery query;
};
static_assert(std::is_trivially_copyable_v<WirePfQuery>);

struct WirePfVerdict {
  std::uint64_t cookie = 0;
  std::uint32_t allow = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<WirePfVerdict>);

// Packs a trivially-copyable record array into a chunk of `pool`; null on
// pool exhaustion (drop/defer, never block).
template <typename Rec>
inline chan::RichPtr pack_records(chan::Pool& pool, std::span<const Rec> recs) {
  const std::uint32_t bytes =
      static_cast<std::uint32_t>(recs.size() * sizeof(Rec));
  chan::RichPtr chunk = pool.alloc(bytes);
  if (!chunk.valid()) return chunk;
  auto view = pool.write_view(chunk);
  std::memcpy(view.data(), recs.data(), bytes);
  return chunk;
}

template <typename Rec>
inline std::vector<Rec> parse_records(std::span<const std::byte> bytes) {
  std::vector<Rec> recs(bytes.size() / sizeof(Rec));
  std::memcpy(recs.data(), bytes.data(), recs.size() * sizeof(Rec));
  return recs;
}

// Loan-ledger borrower id of a transport replica.  Frames referenced by an
// in-flight kL4RxAgg message are on loan from IP's receive pool to the
// target replica; if the replica dies with the message still queued, IP
// reclaims the loans on its restart (the rcvq frames the replica had
// already accepted are released by its own teardown path instead).  The
// high bit keeps these ids clear of the application borrower ids the node
// hands out sequentially.
inline constexpr std::uint32_t transport_borrower(char proto, int shard) {
  return 0x80000000u | (proto == 'U' ? 0x100u : 0u) |
         static_cast<std::uint32_t>(shard);
}

// --- batched socket submissions (kSockBatch) ---------------------------------------
//
// Applications queue socket ops into a per-app submission ring; one doorbell
// flushes the whole batch.  Over channels the batch travels as a packed
// array of WireSockOp records referenced by a kSockBatch message.  Ops are
// executed strictly in array order, so a later op may name the socket a
// kSockOpen earlier in the same batch is about to create (kSockFromBatchOpen).

// Sentinel socket id: "the socket opened by the nearest preceding kSockOpen
// of the same protocol in this batch".
inline constexpr std::uint32_t kSockFromBatchOpen = 0xffffffffu;

struct WireSockOp {
  std::uint16_t opcode = kNop;  // kSockOpen..kSockClose
  std::uint8_t proto = 'T';     // 'T' or 'U'
  std::uint8_t pad = 0;
  std::uint32_t sock = 0;       // socket id or kSockFromBatchOpen
  std::uint64_t req_id = 0;     // per-op reply correlation
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  chan::RichPtr ptr;            // payload chunk for kSockSend/kSockSendTo
};
static_assert(std::is_trivially_copyable_v<WireSockOp>);

inline chan::Message sock_op_message(const WireSockOp& op) {
  chan::Message m;
  m.opcode = op.opcode;
  m.socket = op.sock;
  m.req_id = op.req_id;
  m.arg0 = op.arg0;
  m.arg1 = op.arg1;
  m.ptr = op.ptr;
  if (op.proto == 'U') m.flags |= 2;
  return m;
}

inline WireSockOp sock_op_from_message(char proto, const chan::Message& m) {
  WireSockOp op;
  op.opcode = m.opcode;
  op.proto = static_cast<std::uint8_t>(proto);
  op.sock = m.socket;
  op.req_id = m.req_id;
  op.arg0 = m.arg0;
  op.arg1 = m.arg1;
  op.ptr = m.ptr;
  return op;
}

// Packs `ops` into a chunk of `pool`; null on pool exhaustion (drop/defer,
// never block).
inline chan::RichPtr pack_sock_batch(chan::Pool& pool,
                                     std::span<const WireSockOp> ops) {
  const std::uint32_t bytes =
      static_cast<std::uint32_t>(ops.size() * sizeof(WireSockOp));
  chan::RichPtr chunk = pool.alloc(bytes);
  if (!chunk.valid()) return chunk;
  auto view = pool.write_view(chunk);
  std::memcpy(view.data(), ops.data(), bytes);
  return chunk;
}

inline std::vector<WireSockOp> parse_sock_batch(
    std::span<const std::byte> bytes) {
  std::vector<WireSockOp> ops(bytes.size() / sizeof(WireSockOp));
  std::memcpy(ops.data(), bytes.data(), ops.size() * sizeof(WireSockOp));
  return ops;
}

// Runs every op of a batch in array order, resolving the in-batch open
// sentinel per protocol.  `handle(proto, msg, note_open)` must execute the
// op and invoke `note_open(reply)` synchronously from its reply path so
// later sentinel ops see the socket the open created.
template <typename HandleFn>
inline void run_sock_batch(std::span<const WireSockOp> ops,
                           HandleFn&& handle) {
  std::uint32_t open_t = 0;
  std::uint32_t open_u = 0;
  for (const auto& op : ops) {
    const char proto = static_cast<char>(op.proto);
    chan::Message sm = sock_op_message(op);
    std::uint32_t& batch_open = proto == 'U' ? open_u : open_t;
    if (sm.socket == kSockFromBatchOpen) sm.socket = batch_open;
    handle(proto, sm, [&batch_open, &sm](const chan::Message& r) {
      if (sm.opcode == kSockOpen) batch_open = r.socket;
    });
  }
}

// --- transport-shard routing of a submission flush ---------------------------------
//
// Each op of a flush is assigned to one transport replica: opens go
// round-robin over the replicas the caller reports alive (the cursors
// persist across flushes, so new sockets spread out — and a replica that
// is mid-reincarnation is skipped instead of failing 1/N of new opens),
// in-batch sentinel ops follow the nearest preceding open of their
// protocol (they must execute where that open executes), and every other
// op routes by the shard its socket id encodes.

struct ShardCursors {
  int tcp = 0;
  int udp = 0;
};

// Calls assign(index, shard) for every op, in order.  alive(proto, shard)
// reports whether that replica can take new sockets right now; when none
// is alive the plain round-robin choice stands (and fails loudly there).
template <typename AssignFn, typename AliveFn>
inline void route_sock_shards(std::span<const WireSockOp> ops, int tcp_shards,
                              int udp_shards, ShardCursors& rr,
                              AssignFn&& assign, AliveFn&& alive) {
  int open_t = 0;  // shard of the last in-batch open, per protocol
  int open_u = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const WireSockOp& op = ops[i];
    const bool is_udp = op.proto == 'U';
    const char proto = is_udp ? 'U' : 'T';
    const int shards = std::max(1, is_udp ? udp_shards : tcp_shards);
    int shard;
    if (op.opcode == kSockOpen) {
      int& cur = is_udp ? rr.udp : rr.tcp;
      shard = cur % shards;
      for (int tries = 0; tries < shards; ++tries) {
        const int cand = (cur + tries) % shards;
        if (alive(proto, cand)) {
          shard = cand;
          break;
        }
      }
      cur = (shard + 1) % shards;
      (is_udp ? open_u : open_t) = shard;
    } else if (op.sock == kSockFromBatchOpen) {
      shard = is_udp ? open_u : open_t;
    } else {
      shard = net::sock_shard(op.sock);
      if (shard >= shards) shard = 0;  // stale id after a reshard: shard 0 rejects it
    }
    assign(i, shard);
  }
}

template <typename AssignFn>
inline void route_sock_shards(std::span<const WireSockOp> ops, int tcp_shards,
                              int udp_shards, ShardCursors& rr,
                              AssignFn&& assign) {
  route_sock_shards(ops, tcp_shards, udp_shards, rr,
                    std::forward<AssignFn>(assign),
                    [](char, int) { return true; });
}

// Well-known server names.
inline constexpr const char* kRsName = "rs";
inline constexpr const char* kTcpName = "tcp";
inline constexpr const char* kUdpName = "udp";
inline constexpr const char* kIpName = "ip";
inline constexpr const char* kPfName = "pf";
inline constexpr const char* kStoreName = "store";
inline constexpr const char* kSyscallName = "syscall";
inline constexpr const char* kStackName = "stack";  // combined single server
inline const std::string driver_name(int ifindex) {
  return "drv" + std::to_string(ifindex);
}
// Replica names of the sharded transport plane.  Shard 0 keeps the classic
// unsuffixed name, so every single-shard arrangement (the default, and all
// of Table II) is byte-for-byte what it always was; further replicas are
// "tcp1".."tcpN-1" / "udp1".."udpN-1".
inline const std::string tcp_shard_name(int shard) {
  return shard == 0 ? kTcpName : kTcpName + std::to_string(shard);
}
inline const std::string udp_shard_name(int shard) {
  return shard == 0 ? kUdpName : kUdpName + std::to_string(shard);
}
inline const std::string transport_shard_name(char proto, int shard) {
  return proto == 'U' ? udp_shard_name(shard) : tcp_shard_name(shard);
}
// The sibling replica names of one shard of a sharded transport.
inline std::vector<std::string> transport_shard_siblings(char proto,
                                                         int shard,
                                                         int shard_count) {
  std::vector<std::string> out;
  for (int i = 0; i < shard_count; ++i) {
    if (i != shard) out.push_back(transport_shard_name(proto, i));
  }
  return out;
}

}  // namespace newtos::servers
