// The UDP server: hosts the UDP engine.  Recoverable state (Table I): the
// socket 4-tuples, stored on every change (they change rarely) and reloaded
// on restart, so a crash is transparent to applications — at worst a
// datagram is duplicated or lost, which UDP callers tolerate by contract.
//
// Sharded transport plane: the node may run N replicas (udp, udp1, ...),
// each on its own core.  A datagram from an arbitrary peer hashes to an
// arbitrary replica, so the whole (small) socket table is replicated to
// every shard on each change; the receive queues stay per replica and the
// socket layer drains them all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/ip_fastpath.h"
#include "src/net/udp.h"
#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class UdpServer : public Server {
 public:
  // `src_for` selects a source address for unbound sockets (static routing
  // knowledge baked in at build time, like an /etc/ip config).
  UdpServer(NodeEnv* env, sim::SimCore* core,
            std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for,
            int shard = 0, int shard_count = 1);
  // Teardown: releases engine queues and in-flight descriptors straight
  // into the pools (no handler context for done-reports).
  ~UdpServer() override;

  net::UdpEngine* engine() { return engine_.get(); }
  int shard() const { return shard_; }

  // Multi-queue RSS: this replica owns one NIC RX queue per driver and runs
  // the hoisted IP receive work (src/net/ip_fastpath.h) on frames the
  // drivers post directly (kDrvRxFast).  Must be called before boot.
  void enable_rx_fastpath(net::IpFastPath::Config cfg,
                          std::vector<std::string> driver_names);
  // Fast-path statistics (null when the fast path is off).
  const net::IpFastPath* fastpath() const { return fastpath_.get(); }

  // Socket control entry point shared by the channel path (on_message) and
  // the direct kernel-IPC path (Table II line 2).  `reply` delivers the
  // kSockReply message to the requester.
  void handle_sock_request(const chan::Message& m, sim::Context& ctx,
                           const std::function<void(const chan::Message&)>&
                               reply);

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;
  void on_killed() override;

 private:
  void build_engine();
  void build_fastpath();
  void save_sockets(sim::Context& ctx);
  bool is_sibling(const std::string& peer) const;
  // Pushes one socket record (or its removal) to every sibling replica /
  // to one named sibling.
  void replicate_sock(net::SockId s, sim::Context& ctx,
                      const std::string* only = nullptr);
  void replicate_close(net::SockId s, sim::Context& ctx);

  std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for_;
  int shard_ = 0;
  int shard_count_ = 1;
  std::vector<std::string> siblings_;
  std::unique_ptr<net::UdpEngine> engine_;
  // RSS fast path (null unless enable_rx_fastpath was called).
  bool rx_fastpath_ = false;
  net::IpFastPath::Config fastpath_cfg_;
  std::vector<std::string> fastpath_drivers_;
  std::unique_ptr<net::IpFastPath> fastpath_;
  chan::Pool* pool_ = nullptr;
  struct PendingTx {
    chan::RichPtr desc;
    std::uint64_t arg0 = 0;  // src/dst for resubmission
  };
  std::unordered_map<std::uint64_t, PendingTx> pending_tx_;
};

}  // namespace newtos::servers
