// The combined stack server: TCP, UDP, IP/ICMP/ARP and PF in one process.
//
// Three roles, all from Table II:
//  - "1 server stack" (lines 4/5): one dedicated core, engines glued by
//    function calls, drivers still separate servers reached over channels.
//  - The MINIX 3 baseline (line 1): the same combined stack, but the node
//    runs every component (and the application) on ONE timeshared core with
//    synchronous kernel IPC and a legacy per-packet path-length penalty.
//  - The "ideal monolithic" comparator (line 7): inline drivers (NICs driven
//    in-process), used for the Linux 10GbE reference point and as the
//    traffic peer in all experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/drv/nic.h"
#include "src/net/ip.h"
#include "src/net/pf.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class StackServer : public Server {
 public:
  struct Config {
    net::IpConfig ip;
    std::vector<int> ifindexes;
    std::vector<net::PfRule> rules;
    net::TcpOptions tcp;
    bool use_pf = true;
    bool csum_offload = true;
    bool inline_drivers = false;
    int rx_buffers_per_nic = 96;
    std::uint32_t rx_buf_size = 2048;
  };

  // `nics` is indexed by position in cfg.ifindexes; only used when
  // inline_drivers is set.
  StackServer(NodeEnv* env, sim::SimCore* core, Config cfg,
              std::vector<drv::SimNic*> nics);
  // Teardown: releases engine queues and in-flight descriptors straight
  // into the pools (no handler context for done-reports).
  ~StackServer() override;

  net::TcpEngine* tcp_engine() { return tcp_.get(); }
  net::UdpEngine* udp_engine() { return udp_.get(); }
  net::IpEngine* ip_engine() { return ip_.get(); }
  net::PfEngine* pf_engine() { return pf_.get(); }

  void handle_sock_request(char proto, const chan::Message& m,
                           sim::Context& ctx,
                           const std::function<void(const chan::Message&)>&
                               reply);

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;
  void on_killed() override;

 private:
  // l4 cookies are tagged so IP completions route to the right engine.
  static constexpr std::uint64_t kUdpTag = std::uint64_t{1} << 63;

  void build_engines();
  void install_inline_nic_handlers();
  void post_rx_buffers(int ifindex, sim::Context& ctx);
  void store_state(sim::Context& ctx);
  void save_one(std::uint32_t key, const std::vector<std::byte>& bytes,
                sim::Context& ctx);
  static int ifindex_of(const std::string& driver);
  drv::SimNic* nic_of(int ifindex);

  Config cfg_;
  std::vector<drv::SimNic*> nics_;
  chan::Pool* pool_ = nullptr;     // headers + socket buffers
  chan::Pool* rx_pool_ = nullptr;  // device receive buffers

  std::unique_ptr<net::PfEngine> pf_;
  std::unique_ptr<net::IpEngine> ip_;
  std::unique_ptr<net::TcpEngine> tcp_;
  std::unique_ptr<net::UdpEngine> udp_;

  std::unordered_map<std::uint64_t, chan::RichPtr> drv_descs_;
  std::map<int, int> posted_;
  // Inline-driver mode: frames waiting for TX ring slots, per ifindex.
  std::map<int, std::deque<std::pair<net::TxFrame, std::uint64_t>>>
      tx_backlog_;
  int restore_replies_expected_ = 0;
};

}  // namespace newtos::servers
