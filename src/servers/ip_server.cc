#include "src/servers/ip_server.h"

#include <algorithm>
#include <cstdlib>

#include "src/net/pbuf.h"

namespace newtos::servers {

IpServer::IpServer(NodeEnv* env, sim::SimCore* core, Config cfg)
    : Server(env, kIpName, core), cfg_(std::move(cfg)) {}

int IpServer::ifindex_of(const std::string& driver) {
  return std::atoi(driver.c_str() + 3);  // "drvN"
}

void IpServer::deliver_l4(char proto, net::L4Packet&& pkt) {
  // The steering point of the sharded transport plane: one flow always
  // hashes to the same replica, so replicas never share connections.
  const std::string target =
      proto == 'U' ? udp_shard_name(steer(pkt, cfg_.udp_shards))
                   : tcp_shard_name(steer(pkt, cfg_.tcp_shards));
  chan::Message m;
  m.opcode = kL4Rx;
  m.ptr = pkt.frame;
  m.arg0 = (static_cast<std::uint64_t>(pkt.l4_offset) << 16) | pkt.l4_length;
  m.arg1 = pack_addrs(pkt.src, pkt.dst);
  if (!send_to(target, m, cur())) {
    engine_->rx_done(pkt.frame);
    return;
  }
  ++l4_msgs_;
  ++l4_frames_;
}

int IpServer::steer(const net::L4Packet& pkt, int shards) {
  if (shards <= 1) return 0;
  // Both TCP and UDP start with source and destination port, big-endian.
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  auto bytes = env().pools->read(pkt.frame);
  if (bytes.size() >= static_cast<std::size_t>(pkt.l4_offset) + 4) {
    net::ByteReader r{bytes.subspan(pkt.l4_offset, 4)};
    sport = r.u16();
    dport = r.u16();
  }
  return net::steer_shard(pkt.src, pkt.dst, sport, dport, shards);
}

void IpServer::build_engine() {
  net::IpEngine::Env e;
  e.clock = clock();
  e.timers = timers();
  e.pools = env().pools;
  e.hdr_pool = hdr_pool_;
  e.rx_pool = rx_pool_;
  e.csum_offload = cfg_.csum_offload;
  e.send_frame = [this](int ifindex, net::TxFrame&& frame,
                        std::uint64_t cookie) {
    sim::Context& ctx = cur();
    charge(ctx, 150);  // descriptor packing
    chan::RichPtr desc =
        net::pack_chain(*hdr_pool_, frame.header, frame.payload,
                        frame.offload);
    if (!desc.valid()) return;  // pool exhausted: RTO recovers
    auto old = drv_descs_.find(cookie);
    if (old != drv_descs_.end()) {  // resubmission: replace the descriptor
      hdr_pool_->release(old->second);
      drv_descs_.erase(old);
    }
    chan::Message m;
    m.opcode = kDrvTx;
    m.req_id = cookie;
    m.ptr = desc;
    if (!send_to(driver_name(ifindex), m, ctx)) {
      hdr_pool_->release(desc);  // driver down/full: dropped, RTO recovers
      return;
    }
    drv_descs_.emplace(cookie, desc);
  };
  if (cfg_.use_pf) {
    e.pf_check = [this](const net::PfQuery& q, std::uint64_t cookie) {
      send_to(kPfName, make_pf_check(cookie, q), cur());
      // If PF is down the query is repeated on its restart
      // (resubmit_pf_pending); nothing is ever lost here (Section V-D).
    };
  }
  e.deliver_tcp = [this](net::L4Packet&& pkt) {
    deliver_l4('T', std::move(pkt));
  };
  e.deliver_udp = [this](net::L4Packet&& pkt) {
    deliver_l4('U', std::move(pkt));
  };
  if (cfg_.gro) {
    e.deliver_tcp_agg = [this](net::L4AggPacket&& agg) {
      sim::Context& ctx = cur();
      charge(ctx, 150);  // descriptor packing, same as the TX-side charge
      const int shard = net::steer_shard(agg.src, agg.dst, agg.sport,
                                         agg.dport,
                                         std::max(1, cfg_.tcp_shards));
      std::vector<WireRxFrame> recs;
      recs.reserve(agg.segs.size());
      for (const auto& seg : agg.segs) {
        WireRxFrame rec;
        rec.frame = seg.frame;
        rec.l4_offset = seg.l4_offset;
        rec.l4_length = seg.l4_length;
        recs.push_back(rec);
      }
      chan::RichPtr desc = pack_records<WireRxFrame>(*hdr_pool_, recs);
      if (!desc.valid()) {
        // Pool exhausted: degrade to the classic per-frame leg.
        for (auto& seg : agg.segs) deliver_l4('T', std::move(seg));
        return;
      }
      chan::Message m;
      m.opcode = kL4RxAgg;
      m.ptr = desc;
      m.arg0 = recs.size();
      m.arg1 = pack_addrs(agg.src, agg.dst);
      if (!send_to(tcp_shard_name(shard), m, ctx)) {
        hdr_pool_->release(desc);
        for (auto& seg : agg.segs) engine_->rx_done(seg.frame);
        return;
      }
      ++l4_msgs_;
      l4_frames_ += recs.size();
      // The frame references are now on loan to the replica: if it dies
      // with the message still queued, reclaim() on its restart recovers
      // them (the replica note_returns each frame as it unpacks).
      for (const auto& seg : agg.segs) {
        rx_pool_->note_borrow(seg.frame, transport_borrower('T', shard));
      }
    };
  }
  if (cfg_.gro && cfg_.use_pf) {
    e.pf_check_batch =
        [this](std::span<const std::pair<net::PfQuery, std::uint64_t>> qs) {
          sim::Context& ctx = cur();
          std::vector<WirePfQuery> recs;
          recs.reserve(qs.size());
          for (const auto& [q, cookie] : qs) {
            recs.push_back(WirePfQuery{cookie, q});
          }
          chan::RichPtr desc = pack_records<WirePfQuery>(*hdr_pool_, recs);
          if (desc.valid()) {
            chan::Message m;
            m.opcode = kPfCheckBatch;
            m.ptr = desc;
            m.arg0 = recs.size();
            if (send_to(kPfName, m, ctx)) return;
            hdr_pool_->release(desc);
          }
          // PF down or pool exhausted: per-query messages; unanswered
          // queries are repeated on PF's restart (resubmit_pf_pending).
          for (const auto& [q, cookie] : qs) {
            send_to(kPfName, make_pf_check(cookie, q), ctx);
          }
        };
  }
  e.seg_done = [this](std::uint64_t l4_cookie, bool sent) {
    auto it = l4_reqs_.find(l4_cookie);
    if (it == l4_reqs_.end()) return;
    chan::Message m;
    m.opcode = kIpTxDone;
    m.req_id = it->second.orig_id;
    m.arg0 = sent ? 1 : 0;
    send_to(it->second.from, m, cur());
    l4_reqs_.erase(it);
  };
  engine_ = std::make_unique<net::IpEngine>(std::move(e), cfg_.ip);
}

void IpServer::start(bool restart) {
  hdr_pool_ = env().get_pool("ip.hdr", 16u << 20);
  rx_pool_ = env().get_pool("ip.rx", 32u << 20);

  std::vector<std::string> peers;
  for (int s = 0; s < std::max(1, cfg_.tcp_shards); ++s)
    peers.push_back(tcp_shard_name(s));
  for (int s = 0; s < std::max(1, cfg_.udp_shards); ++s)
    peers.push_back(udp_shard_name(s));
  peers.push_back(kStoreName);
  if (cfg_.use_pf) peers.push_back(kPfName);
  for (int ifindex : cfg_.ifindexes) peers.push_back(driver_name(ifindex));
  // Supervision probes us directly (not just through a transport).
  if (env().knobs.supervision) peers.push_back(kRsName);
  for (const auto& p : peers) {
    expose_in_queue(p, 1024);
    connect_out(p);
  }

  build_engine();

  if (restart) {
    // Recover the routing/interface configuration from the storage server
    // before announcing (Table I: small static state, easy to restore).
    post_control([this](sim::Context& ctx) {
      chan::Message m;
      m.opcode = kStoreGet;
      m.arg0 = kKeyIpConfig;
      store_get_req_ = request_db().add(kStoreName, 0, {});
      m.req_id = store_get_req_;
      if (!send_to(kStoreName, m, ctx)) {
        announce(true);  // no storage: come up with compiled-in config
      }
    });
  } else {
    post_control([this](sim::Context& ctx) {
      store_config(ctx);
      announce(false);
    });
  }
}

void IpServer::store_config(sim::Context& ctx) {
  const auto bytes = engine_->config().serialize();
  chan::RichPtr chunk =
      hdr_pool_->alloc(static_cast<std::uint32_t>(bytes.size()));
  if (!chunk.valid()) return;
  auto view = hdr_pool_->write_view(chunk);
  std::copy(bytes.begin(), bytes.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = kKeyIpConfig;
  m.req_id = request_db().add(kStoreName, chunk.offset, {});
  m.ptr = chunk;
  if (!send_to(kStoreName, m, ctx)) hdr_pool_->release(chunk);
}

void IpServer::on_killed() {
  engine_.reset();
  l4_reqs_.clear();
  drv_descs_.clear();  // in-flight descriptor chunks leak, bounded per crash
  posted_.clear();
  probe_from_.clear();
}

void IpServer::post_rx_buffers(int ifindex, sim::Context& ctx) {
  int& posted = posted_[ifindex];
  const int target = cfg_.rx_buffers_per_nic * std::max(1, cfg_.rx_queues);
  while (posted < target) {
    chan::RichPtr buf = rx_pool_->alloc(cfg_.rx_buf_size);
    if (!buf.valid()) return;
    chan::Message m;
    m.opcode = kDrvRxBuf;
    m.ptr = buf;
    if (!send_to(driver_name(ifindex), m, ctx)) {
      rx_pool_->release(buf);
      return;
    }
    ++posted;
  }
}

void IpServer::on_message(const std::string& from, const chan::Message& m,
                          sim::Context& ctx) {
  const auto& costs = sim().costs();
  switch (m.opcode) {
    case kIpTx: {
      charge(ctx, costs.ip_packet_proc);
      auto chain = net::unpack_chain(*env().pools, m.ptr);
      if (!chain) {  // malformed request: reply failure (validate & ignore)
        chan::Message done;
        done.opcode = kIpTxDone;
        done.req_id = m.req_id;
        done.arg0 = 0;
        send_to(from, done, ctx);
        return;
      }
      net::TxSeg seg;
      seg.l4_header = chain->header;
      seg.payload = std::move(chain->payload);
      seg.offload = chain->offload;
      seg.offload.tso = seg.offload.tso && env().knobs.tso;
      seg.src = unpack_hi(m.arg0);
      seg.dst = unpack_lo(m.arg0);
      seg.protocol = static_cast<std::uint8_t>(m.arg1);
      if (!cfg_.csum_offload) {
        charge(ctx, costs.checksum_cost(seg.total_len()));
      }
      const std::uint64_t id = next_l4_++;
      l4_reqs_.emplace(id, L4Req{from, m.req_id});
      engine_->output(std::move(seg), id);
      return;
    }
    case kPfVerdict:
      charge(ctx, 120);
      engine_->pf_verdict(m.req_id, m.arg0 != 0);
      return;
    case kDrvTxDone: {
      charge(ctx, 150);
      auto it = drv_descs_.find(m.req_id);
      if (it != drv_descs_.end()) {
        hdr_pool_->release(it->second);
        drv_descs_.erase(it);
      }
      engine_->tx_done(m.req_id, m.arg0 != 0);
      return;
    }
    case kDrvRx: {
      charge(ctx, costs.ip_packet_proc);
      const int ifindex = ifindex_of(from);
      auto it = posted_.find(ifindex);
      if (it != posted_.end() && it->second > 0) --it->second;
      if (!cfg_.csum_offload) charge(ctx, costs.checksum_cost(m.ptr.length));
      engine_->input(ifindex, m.ptr);
      post_rx_buffers(ifindex, ctx);  // keep the device fed
      return;
    }
    case kDrvRxBurst: {
      // One dequeue for the whole coalesced burst; the per-frame protocol
      // work is still charged per frame.
      const int ifindex = ifindex_of(from);
      const auto recs = parse_records<WireRxFrame>(env().pools->read(m.ptr));
      auto it = posted_.find(ifindex);
      std::vector<chan::RichPtr> frames;
      frames.reserve(recs.size());
      for (const auto& rec : recs) {
        charge(ctx, costs.ip_packet_proc);
        if (!cfg_.csum_offload) {
          charge(ctx, costs.checksum_cost(rec.frame.length));
        }
        if (it != posted_.end() && it->second > 0) --it->second;
        frames.push_back(rec.frame);
      }
      env().pools->release(m.ptr);  // burst descriptor back to the driver
      if (cfg_.gro) {
        engine_->input_burst(ifindex, frames);
      } else {
        for (const auto& f : frames) engine_->input(ifindex, f);
      }
      post_rx_buffers(ifindex, ctx);
      return;
    }
    case kDrvRxCredit: {
      // The driver fed this many RX buffers to fast-path frames we never
      // saw: repost so the rings stay level.  No protocol work was done
      // here — the shard paid it on its own core.
      charge(ctx, 80);
      const int ifindex = ifindex_of(from);
      auto it = posted_.find(ifindex);
      if (it != posted_.end()) {
        it->second -= std::min<int>(it->second, static_cast<int>(m.arg0));
      }
      post_rx_buffers(ifindex, ctx);
      return;
    }
    case kFastFallback: {
      // A transport's fast path handed a frame back: run the classic input
      // path verbatim.  The buffer credit was already granted by the
      // driver, so posted_ bookkeeping stays untouched.
      charge(ctx, costs.ip_packet_proc);
      const int ifindex = static_cast<int>(m.arg1);
      if (!cfg_.csum_offload) charge(ctx, costs.checksum_cost(m.ptr.length));
      engine_->input(ifindex, m.ptr);
      return;
    }
    case kPfVerdictBatch: {
      const auto recs =
          parse_records<WirePfVerdict>(env().pools->read(m.ptr));
      for (const auto& rec : recs) {
        charge(ctx, 120);
        engine_->pf_verdict(rec.cookie, rec.allow != 0);
      }
      env().pools->release(m.ptr);  // verdict array back to PF's pool
      return;
    }
    case kDrvLink:
      if (m.arg0 != 0) {
        posted_[ifindex_of(from)] = 0;  // device was reset: rings are empty
        post_rx_buffers(ifindex_of(from), ctx);
        // Tell every transport replica the path healed so they retransmit
        // promptly.
        chan::Message up;
        up.opcode = kDrvLink;
        up.arg0 = 1;
        for (int s = 0; s < std::max(1, cfg_.tcp_shards); ++s)
          send_to(tcp_shard_name(s), up, ctx);
        for (int s = 0; s < std::max(1, cfg_.udp_shards); ++s)
          send_to(udp_shard_name(s), up, ctx);
      }
      return;
    case kL4RxDone:
      charge(ctx, 80);
      engine_->rx_done(m.ptr);
      return;
    case kWorkProbe: {
      // Reincarnation work probe bounced through a transport: do one IP
      // hop's worth of work and pass it to the packet filter (the last hop
      // of the synthetic echo) when there is one.  A DIRECT probe instead
      // pays the canary quantum so its latency exposes slowdowns.
      charge(ctx, from == kRsName ? costs.probe_canary
                                  : costs.ip_packet_proc / 2);
      if (from == kRsName) {
        // A DIRECT probe from the reincarnation server judges this server
        // alone: ack shallow, after the canary is paid.  Deep echoes
        // through PF would make us answer for a wedged/slow packet filter
        // — the supervisor probes PF separately and must blame the right
        // component.
        reply_after_charges([this, cookie = m.req_id](sim::Context& c) {
          chan::Message ack;
          ack.opcode = kWorkProbeAck;
          ack.req_id = cookie;
          ack.arg0 = 1;
          send_to(kRsName, ack, c);
        });
        return;
      }
      if (cfg_.use_pf) {
        chan::Message p;
        p.opcode = kWorkProbe;
        p.req_id = m.req_id;
        if (send_to(kPfName, p, ctx)) {
          // A PF that accepts probes but never acks (alive-but-wedged)
          // would grow this map forever; cookies are monotonic, so drop
          // the oldest once a sane bound is passed.
          probe_from_[m.req_id] = from;
          while (probe_from_.size() > 256) {
            probe_from_.erase(probe_from_.begin());
          }
          return;
        }
        // PF down/mid-restart: its heartbeats cover it; short-circuit.
      }
      chan::Message ack;
      ack.opcode = kWorkProbeAck;
      ack.req_id = m.req_id;
      ack.arg0 = 1;
      send_to(from, ack, ctx);
      return;
    }
    case kWorkProbeAck: {
      auto it = probe_from_.find(m.req_id);
      if (it == probe_from_.end()) return;
      chan::Message ack;
      ack.opcode = kWorkProbeAck;
      ack.req_id = m.req_id;
      ack.arg0 = m.arg0 + 1;
      send_to(it->second, ack, ctx);
      probe_from_.erase(it);
      return;
    }
    case kStoreAck: {
      std::uint64_t chunk_off = 0;
      if (request_db().complete(m.req_id, &chunk_off)) {
        // Our config snapshot was copied by the storage server; free it.
        hdr_pool_->release(m.ptr);
      }
      return;
    }
    case kStoreReply: {
      if (!request_db().complete(m.req_id)) return;
      if (m.arg0 != 0) {
        auto bytes = env().pools->read(m.ptr);
        auto cfg = net::IpConfig::parse(bytes);
        if (cfg) engine_->set_config(std::move(*cfg));
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(kStoreName, rel, ctx);
      }
      announce(true);
      return;
    }
    default:
      return;
  }
}

void IpServer::on_peer_up(const std::string& peer, bool restarted,
                          sim::Context& ctx) {
  if (peer.rfind("drv", 0) == 0) {
    const int ifindex = ifindex_of(peer);
    if (restarted) {
      // The device was reset: everything in its rings is gone.  Prefer
      // duplicates over losses (Section V-D): resubmit pending frames.
      posted_[ifindex] = 0;
      if (engine_) engine_->resubmit_tx(ifindex);
    }
    post_rx_buffers(ifindex, ctx);
    return;
  }
  if (peer == kPfName && restarted && engine_) {
    // PF lost our unanswered queries; repeat them — no packet loss across a
    // PF restart (Section V-D, Figure 5).
    engine_->resubmit_pf_pending();
    return;
  }
  if (peer == kStoreName && restarted && engine_) {
    // Storage came back empty: every server must store its state again.
    store_config(ctx);
    return;
  }
}

void IpServer::on_peer_down(const std::string& peer, sim::Context& ctx) {
  (void)ctx;
  for (int s = 0; s < std::max(1, cfg_.tcp_shards); ++s) {
    if (peer != tcp_shard_name(s)) continue;
    if (rx_pool_ != nullptr) {
      // The replica died and its queues were reset: frames an in-flight
      // kL4RxAgg or kDrvRxFast still referenced would strand without
      // this.  Frames the replica had already unpacked were note_returned
      // (and its rcvq was drained by its own teardown path), so only the
      // dead messages' loans are on the ledger.  This runs before the
      // restarted incarnation can receive anything, so no live loan is
      // touched.
      rx_pool_->reclaim(transport_borrower('T', s));
    }
    return;
  }
  for (int s = 0; s < std::max(1, cfg_.udp_shards); ++s) {
    if (peer != udp_shard_name(s)) continue;
    if (rx_pool_ != nullptr) {
      // UDP replicas borrow frames too once the RSS fast path posts
      // kDrvRxFast straight to them; same reclaim discipline.
      rx_pool_->reclaim(transport_borrower('U', s));
    }
    return;
  }
}

}  // namespace newtos::servers
