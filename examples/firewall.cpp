// Firewall: the packet filter in its T junction (Figure 3, Section V-D).
//
// Configures PF to block all inbound TCP except port 22, shows that
//  - inbound connections to a blocked port are refused,
//  - inbound ssh works,
//  - outbound connections keep working (the keep-state rule lets replies
//    through), and
//  - after a PF crash the rules AND the connection table come back, so an
//    established outbound connection is not cut off by its own firewall.
//
//   ./build/examples/firewall
#include <cstdio>

#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

int main() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  Testbed tb(opts);

  // Install the policy: pass out keep-state; block in TCP except dport 22.
  auto* pf = static_cast<servers::PfServer*>(
      tb.newtos().server(servers::kPfName));
  {
    std::vector<net::PfRule> rules;
    net::PfRule out_keep;
    out_keep.action = net::PfAction::Pass;
    out_keep.dir = net::PfDir::Out;
    out_keep.keep_state = true;
    rules.push_back(out_keep);
    net::PfRule ssh_in;
    ssh_in.action = net::PfAction::Pass;
    ssh_in.dir = net::PfDir::In;
    ssh_in.protocol = net::kProtoTcp;
    ssh_in.dport = net::PortRange{22, 22};
    rules.push_back(ssh_in);
    net::PfRule block_in;
    block_in.action = net::PfAction::Block;
    block_in.dir = net::PfDir::In;
    block_in.protocol = net::kProtoTcp;
    rules.push_back(block_in);
    pf->engine()->set_rules(rules);
  }

  // sshd on 22 (allowed) and another echo service on 8080 (blocked).
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer::Config e22;
  e22.port = 22;
  apps::EchoServer sshd(tb.newtos(), sshd_app, e22);
  sshd.start();
  AppActor* web_app = tb.newtos().add_app("web");
  apps::EchoServer::Config e8080;
  e8080.port = 8080;
  apps::EchoServer web(tb.newtos(), web_app, e8080);
  web.start();

  // Inbound clients from the peer.
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config c22;
  c22.dst = tb.peer().peer_addr(0);
  c22.port = 22;
  apps::EchoClient ssh(tb.peer(), ssh_app, c22);
  ssh.start();
  AppActor* curl_app = tb.peer().add_app("curl");
  apps::EchoClient::Config c8080;
  c8080.dst = tb.peer().peer_addr(0);
  c8080.port = 8080;
  apps::EchoClient curl(tb.peer(), curl_app, c8080);
  curl.start();

  // Outbound connection from NewtOS (replies must pass via keep-state).
  AppActor* outrx_app = tb.peer().add_app("out_rx");
  apps::BulkReceiver::Config orc;
  orc.record_series = false;
  apps::BulkReceiver out_rx(tb.peer(), outrx_app, orc);
  out_rx.start();
  AppActor* outtx_app = tb.newtos().add_app("out_tx");
  apps::BulkSender::Config osc;
  osc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender out_tx(tb.newtos(), outtx_app, osc);
  out_tx.start();

  tb.run_until(3 * sim::kSecond);
  std::printf("t=3s  inbound ssh (port 22):    %s (%llu echoes)\n",
              ssh.connected() ? "connected" : "refused",
              static_cast<unsigned long long>(ssh.ok()));
  std::printf("      inbound echo (port 8080): %s (blocked by PF: %llu "
              "packets dropped)\n",
              curl.connected() ? "connected?!" : "refused",
              static_cast<unsigned long long>(
                  tb.newtos().ip_engine()->stats().dropped_pf));
  std::printf("      outbound bulk TCP:        %.0f Mb/s through the "
              "keep-state rule\n",
              out_rx.bytes() * 8.0 / 3.0 / 1e6);

  // Crash the firewall mid-traffic.
  FaultInjector faults(tb.newtos(), 5);
  faults.inject(servers::kPfName, FaultType::Crash);
  const auto bytes_before = out_rx.bytes();
  tb.run_until(6 * sim::kSecond);

  std::printf("\nt=6s  after PF crash + restart:\n");
  std::printf("      rules recovered: %zu, connection table: %zu entries\n",
              pf->engine()->rules().size(), pf->engine()->state_count());
  std::printf("      outbound TCP kept flowing: %.0f Mb/s\n",
              (out_rx.bytes() - bytes_before) * 8.0 / 3.0 / 1e6);
  std::printf("      inbound ssh still alive: %s\n",
              ssh.connected() ? "yes" : "NO");
  std::printf("      port 8080 still blocked: %s\n",
              curl.connected() ? "NO" : "yes");
  return 0;
}
