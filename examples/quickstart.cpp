// Quickstart: bring up a NewtOS node with the full split networking stack
// (Figure 2), connect it to a peer host over a simulated gigabit link, and
// push data through a TCP socket.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/apps.h"
#include "src/core/testbed.h"

using namespace newtos;

int main() {
  // A Testbed is two machines on a wire: "newtos" (the system under test,
  // here the fully split multiserver stack: TCP, UDP, IP, PF, driver,
  // SYSCALL, storage and reincarnation servers, each on its own core) and
  // an ideal monolithic traffic peer.
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.gbps = 1.0;
  Testbed tb(opts);

  std::printf("booted %s with servers:", tb.newtos().config().name.c_str());
  for (const auto& name : tb.newtos().injectable())
    std::printf(" %s", name.c_str());
  std::printf(" (+ syscall, store, rs)\n");

  // A receiver application on the peer...
  AppActor* rx_app = tb.peer().add_app("receiver");
  apps::BulkReceiver::Config rcfg;
  rcfg.port = 5001;
  rcfg.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rcfg);
  receiver.start();

  // ...and a sender on NewtOS.  Applications are event-driven actors over
  // the object socket API (TcpSocket/TcpListener): control ops queue into
  // the app's submission ring and one kernel-IPC trap flushes the batch to
  // the SYSCALL server, which forwards it over channels (Section V-B).
  // The data plane lends pool chunks instead of copying: the sender
  // reserves writable chunks and submits them as a rich-pointer chain, the
  // receiver drains borrowed views — zero payload copies on either side
  // (Section V-C; see the counter printed below).
  AppActor* tx_app = tb.newtos().add_app("sender");
  apps::BulkSender::Config scfg;
  scfg.dst = tb.newtos().peer_addr(0);
  scfg.port = 5001;
  apps::BulkSender sender(tb.newtos(), tx_app, scfg);
  sender.start();

  // Run two seconds of virtual time.
  tb.run_until(2 * sim::kSecond);

  const double mbps = receiver.bytes() * 8.0 / 2.0 / 1e6;
  std::printf("transferred %llu bytes in 2s of virtual time: %.0f Mb/s\n",
              static_cast<unsigned long long>(receiver.bytes()), mbps);

  const auto& tcp = *tb.newtos().tcp_engine();
  std::printf("tcp: %llu segments out, %llu retransmitted bytes\n",
              static_cast<unsigned long long>(tcp.stats().segs_out),
              static_cast<unsigned long long>(tcp.stats().bytes_retx));
  std::printf("connection state: %s\n", tcp.debug(1).c_str());

  const auto& st = tb.newtos().stats();
  const std::uint64_t ops = st.get("sockring.ops");
  const std::uint64_t bells = st.get("sockring.doorbells");
  std::printf("socket rings: %llu ops in %llu doorbells (%.1f ops/trap)\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(bells),
              bells == 0 ? 0.0
                         : static_cast<double>(ops) /
                               static_cast<double>(bells));
  std::printf("payload bytes memcpy'd by the socket layer: %llu\n",
              static_cast<unsigned long long>(
                  st.get("sock.bytes_copied")));
  return 0;
}
