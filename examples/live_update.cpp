// Live update (Section V): replace the UDP server with a "new version" on
// the fly, without rebooting and without touching TCP traffic.
//
// This is the paper's MS11-083 scenario: a vulnerability in the UDP part of
// the Windows stack let an attacker hijack the whole system, and the fix
// required a reboot.  In NewtOS the buggy UDP component is simply replaced:
// TCP traffic — most Internet traffic — "remains completely unaffected by
// the replacement, which is especially important for server installations".
//
// A graceful update is a restart in disguise: the component stores its
// state, exits, and the new binary comes up in restart mode, recovers the
// sockets, and re-announces itself.
//
//   ./build/examples/live_update
#include <cstdio>

#include "src/core/apps.h"
#include "src/core/testbed.h"

using namespace newtos;

int main() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  Testbed tb(opts);

  // TCP: a long-running bulk transfer (the traffic that must not notice).
  AppActor* rx_app = tb.peer().add_app("receiver");
  apps::BulkReceiver::Config rcfg;
  rcfg.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rcfg);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("sender");
  apps::BulkSender::Config scfg;
  scfg.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, scfg);
  sender.start();

  // UDP: a resolver with an open, connected socket.
  AppActor* named_app = tb.peer().add_app("named");
  apps::DnsServer named(tb.peer(), named_app);
  named.start();
  AppActor* res_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dcfg;
  dcfg.dst = tb.newtos().peer_addr(0);
  apps::DnsClient resolver(tb.newtos(), res_app, dcfg);
  resolver.start();

  tb.run_until(2 * sim::kSecond);
  auto* udp_srv = tb.newtos().server(servers::kUdpName);
  const auto inc_before = udp_srv->incarnation();
  const auto socks_before = tb.newtos().udp_engine()->socket_count();
  const auto tcp_retx_before = tb.newtos().tcp_engine()->stats().bytes_retx;
  const auto bytes_before = receiver.bytes();

  std::printf("t=2s  updating the UDP server (incarnation %u, %zu sockets "
              "saved in the storage server)...\n",
              inc_before, socks_before);
  // The update: shut the old instance down; the reincarnation server execs
  // the new version, which recovers its socket table and announces itself.
  // (Channels stay established: a new incarnation inherits the old one's
  // address space, Section IV-D.)
  udp_srv->kill();

  tb.run_until(6 * sim::kSecond);

  std::printf("t=6s  UDP server incarnation %u (was %u), %zu sockets "
              "recovered\n",
              udp_srv->incarnation(), inc_before,
              tb.newtos().udp_engine()->socket_count());
  std::printf("      resolver kept its socket and keeps getting answers: "
              "%llu answered\n",
              static_cast<unsigned long long>(resolver.answered()));
  const double mbps =
      (receiver.bytes() - bytes_before) * 8.0 / 4.0 / 1e6;
  std::printf("      TCP ran at %.0f Mb/s across the update, %llu bytes "
              "retransmitted (unaffected)\n",
              mbps,
              static_cast<unsigned long long>(
                  tb.newtos().tcp_engine()->stats().bytes_retx -
                  tcp_retx_before));
  return 0;
}
