// Crash recovery walkthrough (Section V-D): crash every restartable
// component of the stack, one after another, while a TCP transfer and a DNS
// query loop keep running, and watch the system heal itself.
//
//   ./build/examples/crash_recovery
#include <cstdio>

#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

int main() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.pf_filler_rules = 256;
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("receiver");
  apps::BulkReceiver::Config rcfg;
  rcfg.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rcfg);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("sender");
  apps::BulkSender::Config scfg;
  scfg.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, scfg);
  sender.start();

  AppActor* named_app = tb.peer().add_app("named");
  apps::DnsServer named(tb.peer(), named_app);
  named.start();
  AppActor* res_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dcfg;
  dcfg.dst = tb.newtos().peer_addr(0);
  apps::DnsClient resolver(tb.newtos(), res_app, dcfg);
  resolver.start();

  FaultInjector faults(tb.newtos(), /*seed=*/3);

  // One crash every four seconds: PF, driver, UDP, IP.  (TCP is the one
  // component whose crash would break established connections — Table I.)
  const char* schedule[] = {"pf", "drv0", "udp", "ip"};
  sim::Time t = 2 * sim::kSecond;
  for (const char* victim : schedule) {
    faults.inject_at(t, victim, FaultType::Crash);
    t += 4 * sim::kSecond;
  }

  std::uint64_t prev_bytes = 0;
  std::uint64_t prev_dns = 0;
  for (int sec = 1; sec <= 18; ++sec) {
    tb.run_until(sec * sim::kSecond);
    const double mbps = (receiver.bytes() - prev_bytes) * 8.0 / 1e6;
    prev_bytes = receiver.bytes();
    const std::uint64_t dns = resolver.answered() - prev_dns;
    prev_dns = resolver.answered();
    std::printf("t=%2ds  tcp %7.1f Mb/s   dns %llu/s answered\n", sec, mbps,
                static_cast<unsigned long long>(dns));
  }

  std::printf("\nevent log:\n");
  for (const auto& [when, msg] : tb.newtos().stats().events())
    std::printf("  [%6.3fs] %s\n", when / 1e9, msg.c_str());

  std::printf("\nrestarts per component:\n");
  for (const auto& [name, st] :
       tb.newtos().reincarnation()->child_stats()) {
    if (st.restarts == 0) continue;
    std::printf("  %-6s crashes=%llu restarts=%llu\n", name.c_str(),
                static_cast<unsigned long long>(st.crashes),
                static_cast<unsigned long long>(st.restarts));
  }
  std::printf("\nTCP connection survived all four crashes: %s\n",
              tb.newtos().tcp_engine()->connection_count() > 0 ? "yes"
                                                               : "NO");
  return 0;
}
